package metrics

// Prometheus text-exposition encoding for Hist. The 1888 internal log-linear
// buckets are far finer than a scrape should ship, so WriteProm projects the
// histogram onto a small caller-chosen `le` ladder (cumulative counts are
// exact at every ladder edge up to the histogram's own ≈3.1% bucket
// quantisation) and emits the standard _bucket/_sum/_count triple plus a
// companion quantile-gauge family — the p50/p99/p999 the harness already
// reports, queryable without PromQL histogram_quantile reconstruction error.

import (
	"fmt"
	"io"
	"strconv"
	"time"
)

// PromDefaultBuckets is the default `le` ladder for nanosecond-valued
// latency histograms: powers of four from 1µs to 4s (then +Inf), covering
// sub-microsecond digest paths through multi-second stalls in 12 buckets.
var PromDefaultBuckets = []time.Duration{
	time.Microsecond, 4 * time.Microsecond, 16 * time.Microsecond,
	64 * time.Microsecond, 256 * time.Microsecond,
	time.Millisecond, 4 * time.Millisecond, 16 * time.Millisecond,
	64 * time.Millisecond, 256 * time.Millisecond,
	time.Second, 4 * time.Second,
}

// Cumulative returns the number of recorded observations whose bucket's
// upper bound is ≤ v — the exact count for any v that is a bucket edge,
// and a ≤3.1%-rank-conservative count otherwise. Safe against concurrent
// Record (the result trails racing writers, as all Hist reads do).
func (h *Hist) Cumulative(v int64) int64 {
	if v < 0 {
		return 0
	}
	idx := histIndex(v)
	if histUpper(idx) > v {
		idx--
	}
	var n int64
	for i := 0; i <= idx; i++ {
		n += h.counts[i].Load()
	}
	return n
}

// WriteProm renders the histogram as one Prometheus histogram family named
// name: `name_bucket{...,le="..."}` lines over the given upper-bound
// ladder (plus +Inf), then `name_sum` and `name_count`. Observations are
// taken to be nanoseconds and rendered in seconds, the Prometheus base
// unit. labels ("" or `shard="3"`-style pairs without braces) are applied
// to every sample, so per-shard histograms share a family. The caller owns
// the `# TYPE` header — it must appear once per family, not once per
// label set.
func (h *Hist) WriteProm(w io.Writer, name, labels string, uppers []time.Duration) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	for _, u := range uppers {
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n",
			name, labels, sep, formatSeconds(float64(u)/1e9), h.Cumulative(int64(u)))
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, h.Count())
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatSeconds(float64(h.sum.Load())/1e9))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count())
}

// WriteQuantiles renders the companion gauge family: the histogram's own
// p50/p99/p999 upper bounds in seconds as `name{...,quantile="..."}`
// samples (the classic summary shape, but computed from the mergeable
// histogram, not a streaming sketch).
func (h *Hist) WriteQuantiles(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	for _, q := range [...]struct {
		tag string
		v   float64
	}{{"0.5", 0.5}, {"0.99", 0.99}, {"0.999", 0.999}} {
		fmt.Fprintf(w, "%s{%s%squantile=%q} %s\n",
			name, labels, sep, q.tag, formatSeconds(float64(h.Quantile(q.v))/1e9))
	}
}

// formatSeconds renders a float the shortest way that round-trips —
// Prometheus clients parse either fixed or scientific notation.
func formatSeconds(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
