// P4 export: train a partitioned tree, compile it, emit the P4-16 program
// and bfrt-style rule file a physical Tofino deployment would install, and
// run the same artifacts through the simulator with a blocking controller —
// the full artifact path of the paper's §4.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"splidt"
)

func main() {
	log.SetFlags(0)

	classes := splidt.NumClasses(splidt.D6)
	flows := splidt.Generate(splidt.D6, 700, 11)
	samples := splidt.BuildSamples(flows, 3)
	train, _ := splidt.Split(samples, 0.7)

	model, err := splidt.Train(train, splidt.Config{
		Partitions:         []int{3, 2, 2},
		FeaturesPerSubtree: 4,
		NumClasses:         classes,
	})
	if err != nil {
		log.Fatal(err)
	}
	compiled, err := splidt.Compile(model)
	if err != nil {
		log.Fatal(err)
	}

	gen, err := splidt.NewP4Generator(model, compiled, splidt.P4Options{
		ProgramName: "splidt_ids", FlowSlots: 1 << 17,
	})
	if err != nil {
		log.Fatal(err)
	}
	program := gen.Program()
	rules := gen.Rules()

	fmt.Printf("generated %d lines of P4 and %d table entries\n",
		strings.Count(program, "\n"), len(rules))
	fmt.Println("\n--- program head ---")
	for _, line := range strings.SplitN(program, "\n", 9)[:8] {
		fmt.Println(line)
	}
	fmt.Println("\n--- first rules ---")
	for _, r := range rules[:3] {
		fmt.Println(r)
	}

	// Deploy the same artifacts on the simulator with a controller that
	// blocks every non-benign class (class 0 is benign in D6).
	pipeline, err := splidt.Deploy(splidt.DeployConfig{
		Profile: splidt.Tofino1(), Model: model, Compiled: compiled,
		FlowSlots: 1 << 17, Workload: splidt.Hadoop,
	})
	if err != nil {
		log.Fatal(err)
	}
	attack := make([]int, 0, classes-1)
	for c := 1; c < classes; c++ {
		attack = append(attack, c)
	}
	ctl := splidt.NewController(classes, splidt.BlockClasses(attack...))

	results := pipeline.Replay(flows[490:], time.Millisecond)
	blocked := 0
	for _, r := range results {
		if ctl.HandleDigest(r.Digest).String() == "block" {
			blocked++
		}
	}
	fmt.Printf("\ncontroller: %d flows tracked, %d blocked, mean TTD %v\n",
		ctl.Flows(), blocked, ctl.MeanTTD().Round(time.Millisecond))
	for _, tc := range ctl.TopClasses(3) {
		fmt.Printf("  class %-2d → %d flows\n", tc.Class, tc.Count)
	}
}
