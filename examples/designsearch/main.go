// Design search: run SpliDT's Bayesian-optimisation DSE on a dataset and
// inspect the accuracy-versus-scalability Pareto frontier — the workflow of
// the paper's Figure 5 (search → train → rulegen → resource estimation →
// feasibility → feedback).
package main

import (
	"fmt"
	"log"

	"splidt"
)

func main() {
	log.SetFlags(0)

	env := splidt.NewEnv(splidt.D4, 0) // campus-traffic style, default size
	env.BOIterations = 10
	env.BOParallel = 8

	fmt.Printf("searching %v (%d classes) over depth ≤ 30, k ≤ 7, ≤ 7 partitions...\n",
		env.Dataset, env.Classes)
	res := splidt.DesignSearch(env, splidt.DefaultSearchSpace())

	fmt.Printf("\n%d configurations evaluated; Pareto frontier:\n\n", len(res.Evaluations))
	fmt.Printf("%-12s %-7s %-4s %-7s %s\n", "max #flows", "F1", "k", "depth", "partitions")
	for _, e := range res.Pareto {
		fmt.Printf("%-12d %-7.3f %-4d %-7d %v\n",
			e.Flows, e.F1, e.Point.K, e.Point.Depth, e.Point.Partitions)
	}

	fmt.Println("\nconvergence of best feasible F1:")
	for i, v := range res.BestByIteration {
		bar := ""
		for j := 0; j < int(v*40); j++ {
			bar += "#"
		}
		fmt.Printf("  iter %2d  %.3f  %s\n", i+1, v, bar)
	}

	fmt.Println("\nreading the frontier: the high-flow end forces small k (few")
	fmt.Println("feature registers per flow); the high-F1 end spends registers on")
	fmt.Println("richer subtrees. Every point is feasible on Tofino1 budgets.")
}
