// Quickstart: the shortest end-to-end SpliDT path — generate labelled
// traffic, train a partitioned decision tree, compile it to TCAM artifacts,
// deploy it on the simulated switch pipeline, and classify live flows.
package main

import (
	"fmt"
	"log"
	"time"

	"splidt"
)

func main() {
	log.SetFlags(0)

	// 1. Data: 600 labelled flows from the 4-class IoT dataset, windowed
	//    into 3 partitions (each subtree sees one third of a flow).
	flows := splidt.Generate(splidt.D2, 600, 1)
	samples := splidt.BuildSamples(flows, 3)
	train, test := splidt.Split(samples, 0.7)

	// 2. Train: depth 2+2+2 with at most 4 feature registers per subtree.
	//    Different subtrees pick different features, so the model uses far
	//    more than 4 features in total.
	model, err := splidt.Train(train, splidt.Config{
		Partitions:         []int{2, 2, 2},
		FeaturesPerSubtree: 4,
		NumClasses:         splidt.NumClasses(splidt.D2),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("trained:", model)

	// 3. Score the software model on held-out windows.
	actual := make([]int, len(test))
	pred := make([]int, len(test))
	for i, s := range test {
		actual[i] = s.Label
		pred[i] = model.Classify(s.Windows)
	}
	fmt.Printf("software macro-F1: %.3f\n",
		splidt.MacroF1(actual, pred, splidt.NumClasses(splidt.D2)))

	// 4. Compile to data-plane tables (Range Marking) and deploy on a
	//    Tofino1-profile pipeline. Deploy fails if the model doesn't fit
	//    the hardware budget.
	compiled, err := splidt.Compile(model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d TCAM entries (%d bits)\n", compiled.Entries(), compiled.Bits())

	pipeline, err := splidt.Deploy(splidt.DeployConfig{
		Profile:   splidt.Tofino1(),
		Model:     model,
		Compiled:  compiled,
		FlowSlots: 1 << 16,
		Workload:  splidt.Webserver,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 5. Replay held-out flows packet-by-packet: the pipeline collects
	//    features per window, transitions subtrees via recirculation, and
	//    emits one digest per flow.
	results := pipeline.Replay(flows[420:], time.Millisecond)
	conf := splidt.NewConfusion(splidt.NumClasses(splidt.D2))
	for _, r := range results {
		conf.Add(r.Label, r.Digest.Class)
	}
	stats := pipeline.Stats()
	fmt.Printf("pipeline macro-F1: %.3f over %d flows\n", conf.MacroF1(), stats.Digests)
	fmt.Printf("recirculated %d control packets for %d data packets (%.4f%%)\n",
		stats.ControlPackets, stats.Packets,
		100*float64(stats.ControlPackets)/float64(stats.Packets))
}
