// Intrusion detection: deploy SpliDT as an in-network IDS on the 10-class
// IDS-2017-style dataset (D6), stream attack and benign traffic through the
// simulated switch, and act on digests in real time — the DDoS/brute-force
// scenario the paper's introduction motivates.
//
// The example also shows the time-to-detection story: every flow is
// classified while it is still in flight, with no control-plane round trip.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"splidt"
)

// benignClass is the label the D6 generator assigns to its first traffic
// class; all other classes model attack categories (DoS, DDoS, brute force,
// infiltration, ...).
const benignClass = 0

func main() {
	log.SetFlags(0)

	classes := splidt.NumClasses(splidt.D6)
	flows := splidt.Generate(splidt.D6, 900, 42)
	samples := splidt.BuildSamples(flows, 4)
	train, _ := splidt.Split(samples, 0.7)

	// An IDS wants depth where it matters: a deeper first partition reacts
	// to early-flow signals (handshake anomalies), later partitions refine.
	model, err := splidt.Train(train, splidt.Config{
		Partitions:         []int{3, 2, 2, 2},
		FeaturesPerSubtree: 4,
		NumClasses:         classes,
	})
	if err != nil {
		log.Fatal(err)
	}
	compiled, err := splidt.Compile(model)
	if err != nil {
		log.Fatal(err)
	}
	pipeline, err := splidt.Deploy(splidt.DeployConfig{
		Profile:   splidt.Tofino1(),
		Model:     model,
		Compiled:  compiled,
		FlowSlots: 1 << 17,
		Workload:  splidt.Hadoop, // short bursty flows stress detection time
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("deployed:", model)

	// Stream held-out traffic and act on every digest as it is emitted:
	// benign flows pass, attack flows are "blocked" (here: tallied).
	testFlows := flows[630:]
	results := pipeline.Replay(testFlows, 500*time.Microsecond)

	conf := splidt.NewConfusion(classes)
	blocked, passed := 0, 0
	var detectMS []float64
	missedAttacks, falseAlarms := 0, 0
	for _, r := range results {
		conf.Add(r.Label, r.Digest.Class)
		if r.Digest.Class == benignClass {
			passed++
			if r.Label != benignClass {
				missedAttacks++
			}
		} else {
			blocked++
			detectMS = append(detectMS, float64(r.Digest.TTD())/float64(time.Millisecond))
			if r.Label == benignClass {
				falseAlarms++
			}
		}
	}
	sort.Float64s(detectMS)

	fmt.Printf("flows inspected : %d\n", len(results))
	fmt.Printf("blocked/passed  : %d / %d\n", blocked, passed)
	fmt.Printf("missed attacks  : %d\n", missedAttacks)
	fmt.Printf("false alarms    : %d\n", falseAlarms)
	fmt.Printf("macro-F1        : %.3f\n", conf.MacroF1())
	if len(detectMS) > 0 {
		fmt.Printf("detection p50   : %.1f ms (p99 %.1f ms)\n",
			detectMS[len(detectMS)/2], detectMS[int(0.99*float64(len(detectMS)-1))])
	}
	stats := pipeline.Stats()
	fmt.Printf("recirculation   : %d control packets (%.4f%% of traffic)\n",
		stats.ControlPackets, 100*float64(stats.ControlPackets)/float64(stats.Packets))
}
