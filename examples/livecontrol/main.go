// Live control: the paper's detect→block loop, end to end, on a streaming
// engine session. A sharded engine classifies IDS-style traffic (D6) while
// it is still flowing; a controller consumes the live digest stream and
// pushes ActionBlock verdicts for attack classes straight back into the
// dispatch stage's drop filter, so a blocked flow stops consuming pipeline
// work mid-run — no stop-the-world, no post-hoc replay.
//
// The example streams two waves through one session. Wave 1 is first
// contact: flows are classified in flight, attack flows get blocked (their
// remaining packets are already dropped if they early-exited). Wave 2 is
// the repeat offender: every previously blocked flow is discarded at the
// dispatcher for the cost of one hash lookup, visible live in Snapshot().
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"splidt"
)

// benignClass is the label the D6 generator assigns to its benign traffic
// class; the rest model attack categories (DoS, DDoS, brute force, ...).
const benignClass = 0

func main() {
	log.SetFlags(0)

	classes := splidt.NumClasses(splidt.D6)
	flows := splidt.Generate(splidt.D6, 900, 42)
	samples := splidt.BuildSamples(flows, 4)
	train, _ := splidt.Split(samples, 0.7)

	model, err := splidt.Train(train, splidt.Config{
		Partitions:         []int{3, 2, 2, 2},
		FeaturesPerSubtree: 4,
		NumClasses:         classes,
	})
	if err != nil {
		log.Fatal(err)
	}
	compiled, err := splidt.Compile(model)
	if err != nil {
		log.Fatal(err)
	}

	eng, err := splidt.NewEngine(splidt.EngineConfig{
		Deploy: splidt.DeployConfig{
			Profile: splidt.Tofino1(), Model: model, Compiled: compiled,
			FlowSlots: 1 << 18, Workload: splidt.Webserver,
		},
		Shards: 4,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Policy: block every class except benign. The controller serves the
	// session's live digest stream on its own goroutine and installs a drop
	// verdict the moment an attack digest arrives.
	var attack []int
	for c := 1; c < classes; c++ {
		attack = append(attack, c)
	}
	ctrl := splidt.NewController(classes, splidt.BlockClasses(attack...))

	sess, err := eng.Start(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	served := make(chan int, 1)
	go func() { served <- ctrl.Serve(sess) }()

	const nFlows = 600
	fmt.Println("wave 1: first contact — classify in flight, block on digest")
	feedWave(sess, nFlows)
	waitQuiesce(sess, ctrl)
	snap := sess.Snapshot()
	fmt.Printf("  processed %d packets, %d digests, %d flows blocked, %d packets of blocked flows dropped mid-run\n",
		snap.Stats.Packets, snap.Stats.Digests, snap.BlockedFlows, snap.Dropped)

	fmt.Println("wave 2: repeat offenders — blocked flows die at the dispatcher")
	before := snap
	feedWave(sess, nFlows)
	res, err := sess.Close()
	if err != nil {
		log.Fatal(err)
	}
	blockedDigests := <-served
	after := sess.Snapshot()

	fmt.Printf("  dropped %d more packets at the dispatch stage (no burst slot, no pipeline work)\n",
		after.Dropped-before.Dropped)
	fmt.Printf("  wave-2 pipeline load: %d packets vs wave-1 %d\n",
		after.Stats.Packets-before.Stats.Packets, before.Stats.Packets)

	fmt.Println("totals")
	fmt.Printf("  digests %d, block verdicts %d, mean time-to-detection %v\n",
		ctrl.Digests(), blockedDigests, ctrl.MeanTTD())
	fmt.Printf("  dispatcher drops %d (Result) / %d (Snapshot)\n", res.Dropped, after.Dropped)
	fmt.Printf("  throughput %v\n", res.Throughput)
	if res.Dropped == 0 || after.BlockedFlows == 0 {
		log.Fatal("live control loop blocked nothing — expected attack flows to be dropped")
	}
}

// feedWave streams one workload wave into the session. FeedSource stages
// chunks and retries through backpressure for us; a load-shedding producer
// would call Feed directly and act on ErrBackpressure instead.
func feedWave(sess *splidt.EngineSession, nFlows int) {
	src := splidt.NewStream(splidt.D6, nFlows, 7, 50*time.Microsecond)
	if err := sess.FeedSource(src); err != nil {
		log.Fatal(err)
	}
}

// waitQuiesce waits until the workers have drained the wave and the
// controller has acted on every digest, polling live snapshots — the kind
// of observation the batch API could only do after the fact.
func waitQuiesce(sess *splidt.EngineSession, ctrl *splidt.Controller) {
	for {
		a := sess.Snapshot()
		time.Sleep(5 * time.Millisecond)
		b := sess.Snapshot()
		if a.Stats == b.Stats && ctrl.Digests() >= b.Stats.Digests {
			return
		}
	}
}
