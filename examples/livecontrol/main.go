// Live control: the paper's detect→block loop, end to end, on a streaming
// engine session. A sharded engine classifies IDS-style traffic (D6) while
// it is still flowing; a controller consumes the live digest stream and
// pushes ActionBlock verdicts for attack classes straight back into the
// dispatch stage's drop filter, so a blocked flow stops consuming pipeline
// work mid-run — no stop-the-world, no post-hoc replay.
//
// The example streams two waves through one session. Wave 1 is first
// contact: flows are classified in flight, attack flows get blocked (their
// remaining packets are already dropped if they early-exited). Wave 2 is
// the repeat offender: every previously blocked flow is discarded at the
// dispatcher for the cost of one hash lookup, visible live in Snapshot().
//
// Blocking an early-exited flow used to leak its register slot: the
// dispatcher drops the flow's tail, so the parked slot never saw the
// flow-end packet that frees it, and over waves the flow table filled with
// dead entries. Flow-table ageing closes the leak: Block evicts the slot
// immediately, and an idle-timeout sweep (IdleTimeout/SweepStripe in the
// deploy config, driven by packet time on each shard worker) reclaims
// anything that goes quiet — watch ActiveFlows stay bounded wave over wave
// and Stats.Evictions count the reclaims.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"splidt"
)

// benignClass is the label the D6 generator assigns to its benign traffic
// class; the rest model attack categories (DoS, DDoS, brute force, ...).
const benignClass = 0

func main() {
	log.SetFlags(0)

	classes := splidt.NumClasses(splidt.D6)
	flows := splidt.Generate(splidt.D6, 900, 42)
	samples := splidt.BuildSamples(flows, 4)
	train, _ := splidt.Split(samples, 0.7)

	model, err := splidt.Train(train, splidt.Config{
		Partitions:         []int{3, 2, 2, 2},
		FeaturesPerSubtree: 4,
		NumClasses:         classes,
	})
	if err != nil {
		log.Fatal(err)
	}
	compiled, err := splidt.Compile(model)
	if err != nil {
		log.Fatal(err)
	}

	eng, err := splidt.NewEngine(splidt.EngineConfig{
		Deploy: splidt.DeployConfig{
			Profile: splidt.Tofino1(), Model: model, Compiled: compiled,
			FlowSlots: 1 << 16, Workload: splidt.Webserver,
			// Flow-table ageing: slots idle for 5s of packet time are
			// reclaimed. The timeout must exceed the workload's worst
			// intra-flow packet gap (~2.5s here) or the sweep evicts live
			// flows mid-conversation and resets their feature state; 2048
			// slots swept per burst so the wave-2 traffic (mostly dropped
			// at the dispatcher, hence few bursts) still covers each
			// shard's array.
			IdleTimeout: 5 * time.Second, SweepStripe: 2048,
		},
		Shards: 4,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Policy: block every class except benign. The controller serves the
	// session's live digest stream on its own goroutine and installs a drop
	// verdict the moment an attack digest arrives.
	var attack []int
	for c := 1; c < classes; c++ {
		attack = append(attack, c)
	}
	ctrl := splidt.NewController(classes, splidt.BlockClasses(attack...))

	sess, err := eng.Start(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	served := make(chan int, 1)
	go func() {
		blocked, serveErr := ctrl.Serve(sess)
		if serveErr != nil {
			log.Fatalf("digest stream died: %v", serveErr)
		}
		served <- blocked
	}()

	const nFlows = 600
	fmt.Println("wave 1: first contact — classify in flight, block on digest")
	wave1End := feedWave(sess, nFlows, 0)
	waitQuiesce(sess, ctrl)
	snap := sess.Snapshot()
	fmt.Printf("  processed %d packets, %d digests, %d flows blocked, %d packets of blocked flows dropped mid-run\n",
		snap.Stats.Packets, snap.Stats.Digests, snap.BlockedFlows, snap.Dropped)
	fmt.Printf("  flow table after wave 1: %d slots active, %d evicted (blocked early-exits reclaimed, not leaked), %d collision packets\n",
		snap.ActiveFlows, snap.Stats.Evictions, snap.Stats.Collisions)

	fmt.Println("wave 2: repeat offenders — blocked flows die at the dispatcher")
	before := snap
	feedWave(sess, nFlows, wave1End)
	res, err := sess.Close()
	if err != nil {
		log.Fatal(err)
	}
	blockedDigests := <-served
	after := sess.Snapshot()

	fmt.Printf("  dropped %d more packets at the dispatch stage (no burst slot, no pipeline work)\n",
		after.Dropped-before.Dropped)
	fmt.Printf("  wave-2 pipeline load: %d packets vs wave-1 %d\n",
		after.Stats.Packets-before.Stats.Packets, before.Stats.Packets)
	fmt.Printf("  flow table after wave 2: %d slots active, %d evicted — bounded, not ratcheting — %d collision packets\n",
		after.ActiveFlows, after.Stats.Evictions, after.Stats.Collisions)

	fmt.Println("totals")
	fmt.Printf("  digests %d, block verdicts %d, mean time-to-detection %v\n",
		ctrl.Digests(), blockedDigests, ctrl.MeanTTD())
	fmt.Printf("  dispatcher drops %d (Result) / %d (Snapshot)\n", res.Dropped, after.Dropped)
	fmt.Printf("  throughput %v\n", res.Throughput)
	if res.Dropped == 0 || after.BlockedFlows == 0 {
		log.Fatal("live control loop blocked nothing — expected attack flows to be dropped")
	}
	if res.Stats.Evictions == 0 {
		log.Fatal("flow-table ageing reclaimed nothing — blocked early-exited flows should have been evicted")
	}
	// Without eviction, every blocked early-exited flow would park a slot
	// forever; bounded means the surviving occupancy is nowhere near that.
	if after.ActiveFlows >= after.BlockedFlows {
		log.Fatalf("flow table not bounded: %d slots active with %d flows blocked", after.ActiveFlows, after.BlockedFlows)
	}
}

// feedWave streams one workload wave into the session, shifted to start at
// packet time `from` — wave 2 replays the same trace later in packet time,
// as real repeat offenders would, which also keeps the ageing sweeps'
// packet-time clock advancing. FeedSource stages chunks and retries
// through backpressure for us; a load-shedding producer would call Feed
// directly and act on ErrBackpressure instead. Returns the wave's last
// packet timestamp (the next wave's natural start).
func feedWave(sess *splidt.EngineSession, nFlows int, from time.Duration) time.Duration {
	src := &splidt.ShiftSource{
		Src:    splidt.NewStream(splidt.D6, nFlows, 7, 50*time.Microsecond),
		Offset: from,
	}
	if err := sess.FeedSource(src); err != nil {
		log.Fatal(err)
	}
	return src.Max()
}

// waitQuiesce waits until the workers have drained the wave and the
// controller has acted on every digest, polling live snapshots — the kind
// of observation the batch API could only do after the fact.
func waitQuiesce(sess *splidt.EngineSession, ctrl *splidt.Controller) {
	for {
		a := sess.Snapshot()
		time.Sleep(5 * time.Millisecond)
		b := sess.Snapshot()
		if a.Stats == b.Stats && ctrl.Digests() >= b.Stats.Digests {
			return
		}
	}
}
