// VPN detection: encrypted-traffic classification on the 13-class
// ISCX-VPN-style dataset (D3). Encrypted payloads leave only traffic-shape
// features (sizes, timing, direction) — exactly the stateful features
// SpliDT scales — so this example contrasts SpliDT against the one-shot
// top-k baselines at increasing flow-table sizes.
package main

import (
	"fmt"
	"log"

	"splidt"
)

func main() {
	log.SetFlags(0)

	classes := splidt.NumClasses(splidt.D3)
	flows := splidt.Generate(splidt.D3, 780, 3)

	// Baselines collect whole-flow statistics (one-shot inference).
	whole := splidt.BuildSamples(flows, 1)
	trainW, testW := splidt.Split(whole, 0.7)

	// SpliDT observes the same flows in 3 windows.
	windowed := splidt.BuildSamples(flows, 3)
	trainS, testS := splidt.Split(windowed, 0.7)

	fmt.Printf("%-8s %-10s %-8s %-10s %-12s\n", "#Flows", "System", "F1", "Features", "Reg bits")
	for _, flowTarget := range []int{100_000, 500_000, 1_000_000} {
		nb, err := splidt.TrainNetBeacon(trainW, testW, splidt.BaselineOptions{
			Classes: classes, FlowTarget: flowTarget, Profile: splidt.Tofino1(),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %-10s %-8.3f %-10d %-12d\n",
			flowTarget, "NetBeacon", nb.F1, nb.K, nb.RegisterBits)

		leo, err := splidt.TrainLeo(trainW, testW, splidt.BaselineOptions{
			Classes: classes, FlowTarget: flowTarget, Profile: splidt.Tofino1(),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %-10s %-8.3f %-10d %-12d\n",
			flowTarget, "Leo", leo.F1, leo.K, leo.RegisterBits)

		// SpliDT: pick the feature budget that fits the flow target, then
		// let subtrees multiplex many features through those k slots.
		k := 4
		if flowTarget >= 1_000_000 {
			k = 2
		}
		model, err := splidt.Train(trainS, splidt.Config{
			Partitions:         []int{3, 2, 2},
			FeaturesPerSubtree: k,
			NumClasses:         classes,
		})
		if err != nil {
			log.Fatal(err)
		}
		actual := make([]int, len(testS))
		pred := make([]int, len(testS))
		for i, s := range testS {
			actual[i] = s.Label
			pred[i] = model.Classify(s.Windows)
		}
		f1 := splidt.MacroF1(actual, pred, classes)
		fmt.Printf("%-8d %-10s %-8.3f %-10d %-12d\n",
			flowTarget, "SpliDT", f1, len(model.TotalFeatures()), k*32)
	}
	fmt.Println("\nSpliDT holds its register footprint at k×32 bits while using")
	fmt.Println("several times more distinct features than the top-k baselines.")
}
