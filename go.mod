module splidt

go 1.24
