#!/usr/bin/env bash
# Telemetry-plane smoke: drive a live loadgen run with the management
# server bound, then scrape /healthz and /metrics and assert the
# exposition carries real per-shard data. Pure curl + grep — no promtool
# dependency — so it runs anywhere the CI image does.
set -euo pipefail

PORT="${SPLIDT_TELEMETRY_PORT:-19309}"
ADDR="127.0.0.1:${PORT}"
BIN="$(mktemp -d)/splidt-loadgen"
LOG="$(mktemp)"
PAGE="$(mktemp)"

cleanup() {
    [[ -n "${PID:-}" ]] && kill "$PID" 2>/dev/null || true
    [[ -n "${PID:-}" ]] && wait "$PID" 2>/dev/null || true
    rm -f "$LOG" "$PAGE"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/splidt-loadgen

# A long unpaced steady phase: big enough that the run is still live while
# we scrape, small enough to finish fast once we are done (the kill in
# cleanup ends it early either way).
"$BIN" -flows 20000 -feeders 2 -shards 2 -slots 65536 \
    -phases "steady:30m" -telemetry "$ADDR" >"$LOG" 2>&1 &
PID=$!

# Wait for /healthz to come up and report a live session (the harness
# binds it via OnSession after engine start).
for i in $(seq 1 100); do
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "loadgen exited early:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    if curl -sf "http://${ADDR}/healthz" | grep -q '"status":"ok"'; then
        break
    fi
    if [[ "$i" == 100 ]]; then
        echo "healthz never reported ok:" >&2
        curl -s "http://${ADDR}/healthz" >&2 || true
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.2
done
echo "healthz ok"

curl -sf "http://${ADDR}/metrics" >"$PAGE"

# Family presence: the core counter families, per-shard and merged.
for re in \
    '^# TYPE splidt_packets_total counter$' \
    '^# TYPE splidt_digests_total counter$' \
    '^# TYPE splidt_shard_state gauge$' \
    '^splidt_packets_total\{shard="0"\} [0-9]+$' \
    '^splidt_packets_total\{shard="1"\} [0-9]+$' \
    '^splidt_packets_total\{shard="all"\} [0-9]+$' \
    '^splidt_active_flows [0-9]+$' \
    '^splidt_fed_packets_total [0-9]+$' \
    '^splidt_shard_state\{shard="0"\} 0$' \
    '^splidt_wheel_expiries_total\{shard="all"\} [0-9]+$' \
    '^splidt_up 1$' \
    '^splidt_digest_latency_seconds_count [0-9]+$' \
; do
    if ! grep -Eq "$re" "$PAGE"; then
        echo "metrics page missing /$re/:" >&2
        head -80 "$PAGE" >&2
        exit 1
    fi
done

# The session is live and fed: the merged packet counter must be > 0.
pkts=$(grep -E '^splidt_packets_total\{shard="all"\} ' "$PAGE" | awk '{print $2}')
if [[ "$pkts" -le 0 ]]; then
    echo "no packets processed at scrape time" >&2
    exit 1
fi

# Every non-comment line must parse as name{labels} value — the shape
# Prometheus' text parser accepts (a malformed line poisons the whole
# scrape, so one bad writer fails here, not in production).
if grep -Ev '^#' "$PAGE" | grep -Evq '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.eE+-]+$'; then
    echo "unparseable exposition lines:" >&2
    grep -Ev '^#' "$PAGE" | grep -Ev '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.eE+-]+$' >&2
    exit 1
fi

# The flight recorder is live on every shard of a healthy session.
if ! curl -sf "http://${ADDR}/flightrecorder?shard=0" | grep -q '"kind"'; then
    echo "flightrecorder returned no events for shard 0" >&2
    exit 1
fi

echo "telemetry smoke ok: $pkts packets scraped live"
